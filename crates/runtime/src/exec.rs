//! The execution engine: a deterministic interpreter of `sct-ir` programs in
//! which every scheduling decision is delegated to a caller-supplied
//! function.

use crate::bug::Bug;
use crate::config::ExecConfig;
use crate::objects::{BarrierState, CondvarState, MutexState, SemState};
use crate::observer::{ExecObserver, SyncObjectId};
use crate::outcome::{ExecutionOutcome, StepRecord};
use crate::point::{PendingOp, SchedulingPoint};
use crate::thread::{ThreadId, ThreadState, ThreadStatus};
use sct_ir::{
    BarrierRef, CondvarRef, Expr, Instr, Loc, MutexRef, Op, Program, RmwOp, SemRef, VarRef,
};
use std::borrow::Cow;

/// A single controlled execution of a program.
///
/// The expected call pattern is [`Execution::new`] followed by
/// [`Execution::run`]; explorers that need finer control can instead drive
/// the loop themselves with [`Execution::enabled_threads`],
/// [`Execution::scheduling_point`] and [`Execution::step`].
///
/// Explorers that run many schedules of the same program should construct the
/// execution **once** (with [`Execution::new_shared`], which borrows the
/// configuration instead of cloning it) and call [`Execution::reset`] between
/// schedules: the rewind reuses every internal allocation, including the
/// per-thread state of previously spawned threads, instead of rebuilding a
/// dozen `Vec`s per schedule.
pub struct Execution<'p> {
    program: &'p Program,
    config: Cow<'p, ExecConfig>,

    globals: Vec<i64>,
    global_base: Vec<usize>,
    global_len: Vec<u32>,

    mutexes: Vec<MutexState>,
    mutex_base: Vec<usize>,
    mutex_len: Vec<u32>,

    condvars: Vec<CondvarState>,
    condvar_base: Vec<usize>,
    condvar_len: Vec<u32>,

    sems: Vec<SemState>,
    sem_base: Vec<usize>,
    sem_len: Vec<u32>,

    barriers: Vec<BarrierState>,
    barrier_base: Vec<usize>,
    barrier_len: Vec<u32>,

    threads: Vec<ThreadState>,
    /// Thread states recycled by [`Execution::reset`]; `Spawn` pops from here
    /// before allocating, so repeated schedules of the same program reuse the
    /// per-thread `locals` buffers.
    thread_pool: Vec<ThreadState>,

    last: Option<ThreadId>,
    steps: Vec<StepRecord>,
    bug: Option<Bug>,
    diverged: bool,
    max_enabled: usize,
    scheduling_points: usize,
    started: bool,
}

impl<'p> Execution<'p> {
    /// Set up a fresh execution of `program`, taking ownership of `config`.
    pub fn new(program: &'p Program, config: ExecConfig) -> Self {
        Execution::with_config(program, Cow::Owned(config))
    }

    /// Set up a fresh execution of `program` borrowing `config`, so explorers
    /// that run many schedules never clone the (potentially large) racy-set
    /// configuration.
    pub fn new_shared(program: &'p Program, config: &'p ExecConfig) -> Self {
        Execution::with_config(program, Cow::Borrowed(config))
    }

    fn with_config(program: &'p Program, config: Cow<'p, ExecConfig>) -> Self {
        let global_base: Vec<usize> = program
            .globals
            .iter()
            .scan(0usize, |acc, g| {
                let base = *acc;
                *acc += g.len as usize;
                Some(base)
            })
            .collect();
        let global_len: Vec<u32> = program.globals.iter().map(|g| g.len).collect();
        let globals: Vec<i64> = program
            .globals
            .iter()
            .flat_map(|g| g.init.clone())
            .collect();

        let mutex_base: Vec<usize> = scan_offsets(program.mutexes.iter().map(|m| m.len));
        let mutex_len: Vec<u32> = program.mutexes.iter().map(|m| m.len).collect();
        let mutexes = vec![MutexState::default(); program.mutex_instances()];

        let condvar_base: Vec<usize> = scan_offsets(program.condvars.iter().map(|c| c.len));
        let condvar_len: Vec<u32> = program.condvars.iter().map(|c| c.len).collect();
        let condvars = vec![CondvarState::default(); program.condvar_instances()];

        let sem_base: Vec<usize> = scan_offsets(program.sems.iter().map(|s| s.len));
        let sem_len: Vec<u32> = program.sems.iter().map(|s| s.len).collect();
        let sems: Vec<SemState> = program
            .sems
            .iter()
            .flat_map(|s| std::iter::repeat_n(SemState { count: s.init }, s.len as usize))
            .collect();

        let barrier_base: Vec<usize> = scan_offsets(program.barriers.iter().map(|b| b.len));
        let barrier_len: Vec<u32> = program.barriers.iter().map(|b| b.len).collect();
        let barriers: Vec<BarrierState> = program
            .barriers
            .iter()
            .flat_map(|b| {
                std::iter::repeat_n(
                    BarrierState {
                        participants: b.participants,
                        ..Default::default()
                    },
                    b.len as usize,
                )
            })
            .collect();

        let main_template = &program.templates[program.main.index()];
        let threads = vec![ThreadState::new(program.main, main_template.locals, None)];

        Execution {
            program,
            config,
            globals,
            global_base,
            global_len,
            mutexes,
            mutex_base,
            mutex_len,
            condvars,
            condvar_base,
            condvar_len,
            sems,
            sem_base,
            sem_len,
            barriers,
            barrier_base,
            barrier_len,
            threads,
            thread_pool: Vec::new(),
            last: None,
            steps: Vec::new(),
            bug: None,
            diverged: false,
            max_enabled: 0,
            scheduling_points: 0,
            started: false,
        }
    }

    /// Rewind to the initial state of the program without releasing any of
    /// the buffers built up so far: globals, synchronisation objects, thread
    /// states (spawned threads are parked in a pool for reuse) and the step
    /// record are all rewritten in place. After `reset`, running the same
    /// schedule produces bit-identical [`StepRecord`]s and fingerprints to a
    /// freshly constructed execution.
    pub fn reset(&mut self) {
        self.globals.clear();
        self.globals.extend(
            self.program
                .globals
                .iter()
                .flat_map(|g| g.init.iter().copied()),
        );

        for m in &mut self.mutexes {
            m.owner = None;
            m.destroyed = false;
        }
        for cv in &mut self.condvars {
            cv.waiters.clear();
        }
        let mut sem = 0usize;
        for s in &self.program.sems {
            for _ in 0..s.len {
                self.sems[sem].count = s.init;
                sem += 1;
            }
        }
        let mut bar = 0usize;
        for b in &self.program.barriers {
            for _ in 0..b.len {
                let state = &mut self.barriers[bar];
                state.waiting.clear();
                state.participants = b.participants;
                state.generation = 0;
                bar += 1;
            }
        }

        // Park spawned threads (locals buffers included) for reuse and rewind
        // the initial thread.
        self.thread_pool.extend(self.threads.drain(1..));
        let main_template = &self.program.templates[self.program.main.index()];
        self.threads[0].reinit(self.program.main, main_template.locals, None);

        self.last = None;
        self.steps.clear();
        self.bug = None;
        self.diverged = false;
        self.max_enabled = 0;
        self.scheduling_points = 0;
        self.started = false;
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Number of threads created so far (including the initial thread).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The bug found so far, if any.
    pub fn bug(&self) -> Option<&Bug> {
        self.bug.as_ref()
    }

    /// Current value of a flattened global cell (test/diagnostic helper).
    pub fn global_cell(&self, addr: usize) -> i64 {
        self.globals[addr]
    }

    // ----- enabledness -----

    fn thread_enabled(&self, tid: ThreadId) -> bool {
        let t = &self.threads[tid.index()];
        match t.status {
            ThreadStatus::Finished
            | ThreadStatus::WaitingCondvar { .. }
            | ThreadStatus::WaitingBarrier { .. } => false,
            ThreadStatus::Reacquiring { mutex } => self.mutexes[mutex].is_free(),
            ThreadStatus::Runnable => match self.pending_instr(tid) {
                Some(Instr::Op { op }) => self.op_enabled(tid, op),
                // A runnable thread is always parked at a visible operation
                // (or at its first instruction before the execution starts).
                _ => true,
            },
        }
    }

    fn op_enabled(&self, tid: ThreadId, op: &Op) -> bool {
        let t = &self.threads[tid.index()];
        match op {
            Op::Lock { mutex } => match self.resolve_mutex(tid, mutex) {
                Ok(m) => self.mutexes[m].is_free(),
                // Resolution errors surface as bugs when the op executes.
                Err(_) => true,
            },
            Op::SemWait { sem } => match self.resolve_sem(tid, sem) {
                Ok(s) => self.sems[s].count > 0,
                Err(_) => true,
            },
            Op::Join { thread } => {
                let target = thread.eval(&t.locals);
                if target < 0 || target as usize >= self.threads.len() {
                    true // executing reports InvalidJoin
                } else {
                    self.threads[target as usize].status.is_finished()
                }
            }
            _ => true,
        }
    }

    fn pending_instr(&self, tid: ThreadId) -> Option<&Instr> {
        let t = &self.threads[tid.index()];
        self.program.templates[t.template.index()].body.get(t.pc)
    }

    /// Threads currently enabled, in thread-id order.
    pub fn enabled_threads(&self) -> Vec<ThreadId> {
        (0..self.threads.len())
            .map(ThreadId)
            .filter(|&t| self.thread_enabled(t))
            .collect()
    }

    /// True when every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status.is_finished())
    }

    /// True once the execution can make no further progress (terminal state,
    /// bug found, or divergence).
    pub fn is_terminal(&self) -> bool {
        self.bug.is_some() || self.enabled_threads().is_empty()
    }

    // ----- scheduling point construction -----

    fn pending_summary(&self, tid: ThreadId) -> PendingOp {
        let t = &self.threads[tid.index()];
        let loc = Loc {
            template: t.template,
            pc: t.pc.min(u32::MAX as usize) as u32,
        };
        let (addr, is_write) = match t.status {
            ThreadStatus::Runnable => match self.pending_instr(tid) {
                Some(Instr::Op { op }) => match op {
                    Op::Load { var, .. } => (self.resolve_var(tid, var).ok(), false),
                    Op::Store { var, .. } | Op::Rmw { var, .. } | Op::Cas { var, .. } => {
                        (self.resolve_var(tid, var).ok(), true)
                    }
                    _ => (None, false),
                },
                _ => (None, false),
            },
            _ => (None, false),
        };
        PendingOp {
            thread: tid,
            loc,
            addr,
            is_write,
        }
    }

    /// Build the scheduling point for the current state. `enabled` must be
    /// the current enabled set (callers obtain it from
    /// [`Execution::enabled_threads`]).
    pub fn scheduling_point(&self, enabled: &[ThreadId]) -> SchedulingPoint {
        let last_enabled = self.last.map(|l| enabled.contains(&l)).unwrap_or(false);
        SchedulingPoint {
            enabled: enabled.to_vec(),
            last: self.last,
            last_enabled,
            num_threads: self.threads.len(),
            step_index: self.steps.len(),
            pending: enabled.iter().map(|&t| self.pending_summary(t)).collect(),
        }
    }

    // ----- resolution helpers -----

    fn loc_of(&self, tid: ThreadId) -> Loc {
        let t = &self.threads[tid.index()];
        Loc {
            template: t.template,
            pc: t.pc.min(u32::MAX as usize) as u32,
        }
    }

    fn resolve_indexed(
        &self,
        tid: ThreadId,
        base: usize,
        len: u32,
        index: &Option<Expr>,
    ) -> Result<usize, Bug> {
        let idx = match index {
            None => 0,
            Some(e) => e.eval(&self.threads[tid.index()].locals),
        };
        if idx < 0 || idx as u32 >= len {
            Err(Bug::OutOfBounds {
                thread: tid,
                loc: self.loc_of(tid),
                index: idx,
                len,
            })
        } else {
            Ok(base + idx as usize)
        }
    }

    fn resolve_var(&self, tid: ThreadId, var: &VarRef) -> Result<usize, Bug> {
        self.resolve_indexed(
            tid,
            self.global_base[var.var.index()],
            self.global_len[var.var.index()],
            &var.index,
        )
    }

    fn resolve_mutex(&self, tid: ThreadId, m: &MutexRef) -> Result<usize, Bug> {
        self.resolve_indexed(
            tid,
            self.mutex_base[m.base.index()],
            self.mutex_len[m.base.index()],
            &m.index,
        )
    }

    fn resolve_condvar(&self, tid: ThreadId, c: &CondvarRef) -> Result<usize, Bug> {
        self.resolve_indexed(
            tid,
            self.condvar_base[c.base.index()],
            self.condvar_len[c.base.index()],
            &c.index,
        )
    }

    fn resolve_sem(&self, tid: ThreadId, s: &SemRef) -> Result<usize, Bug> {
        self.resolve_indexed(
            tid,
            self.sem_base[s.base.index()],
            self.sem_len[s.base.index()],
            &s.index,
        )
    }

    fn resolve_barrier(&self, tid: ThreadId, b: &BarrierRef) -> Result<usize, Bug> {
        self.resolve_indexed(
            tid,
            self.barrier_base[b.base.index()],
            self.barrier_len[b.base.index()],
            &b.index,
        )
    }

    // ----- visibility -----

    fn op_visible(&self, op: &Op, loc: Loc) -> bool {
        if op.is_sync() || op.is_atomic_access() {
            return true;
        }
        if op.is_memory_access() {
            return self.config.visibility.data_access_visible(loc);
        }
        false
    }

    // ----- execution -----

    fn set_bug(&mut self, bug: Bug) {
        if self.bug.is_none() {
            if matches!(bug, Bug::StepLimitExceeded { .. }) {
                self.diverged = true;
            }
            self.bug = Some(bug);
        }
    }

    /// Execute invisible instructions of `tid` until it parks at a visible
    /// operation, blocks, finishes or a bug is found.
    fn advance(&mut self, tid: ThreadId, observer: &mut dyn ExecObserver) {
        let mut executed = 0usize;
        loop {
            if self.bug.is_some() {
                return;
            }
            if executed > self.config.max_invisible_ops_per_step {
                self.set_bug(Bug::StepLimitExceeded {
                    limit: self.config.max_invisible_ops_per_step,
                });
                return;
            }
            let t = &self.threads[tid.index()];
            if !matches!(t.status, ThreadStatus::Runnable) {
                return;
            }
            let template = t.template;
            let pc = t.pc;
            let instr = match self.program.templates[template.index()].body.get(pc) {
                Some(i) => i.clone(),
                None => {
                    // Running off the end of the body terminates the thread.
                    self.finish_thread(tid, observer);
                    return;
                }
            };
            match instr {
                Instr::Halt => {
                    self.finish_thread(tid, observer);
                    return;
                }
                Instr::Goto { target } => {
                    self.threads[tid.index()].pc = target;
                }
                Instr::Branch { cond, target } => {
                    let v = cond.eval(&self.threads[tid.index()].locals);
                    self.threads[tid.index()].pc = if v == 0 { target } else { pc + 1 };
                }
                Instr::Op { op } => {
                    let loc = Loc {
                        template,
                        pc: pc as u32,
                    };
                    if self.op_visible(&op, loc) {
                        return; // parked at a visible operation
                    }
                    self.execute_invisible_op(tid, &op, loc, observer);
                    if self.bug.is_some() {
                        return;
                    }
                }
            }
            executed += 1;
        }
    }

    fn finish_thread(&mut self, tid: ThreadId, observer: &mut dyn ExecObserver) {
        self.threads[tid.index()].status = ThreadStatus::Finished;
        observer.on_thread_finished(tid);
    }

    fn execute_invisible_op(
        &mut self,
        tid: ThreadId,
        op: &Op,
        loc: Loc,
        observer: &mut dyn ExecObserver,
    ) {
        match op {
            Op::Assign { dst, value } => {
                let v = value.eval(&self.threads[tid.index()].locals);
                self.threads[tid.index()].locals[dst.index()] = v;
                self.threads[tid.index()].pc += 1;
            }
            Op::Assert { cond, msg } => {
                let v = cond.eval(&self.threads[tid.index()].locals);
                if v == 0 {
                    self.set_bug(Bug::AssertionFailure {
                        thread: tid,
                        loc,
                        msg: msg.clone(),
                    });
                } else {
                    self.threads[tid.index()].pc += 1;
                }
            }
            Op::Fail { msg } => {
                self.set_bug(Bug::ExplicitFailure {
                    thread: tid,
                    loc,
                    msg: msg.clone(),
                });
            }
            Op::Load { var, dst, atomic } => match self.resolve_var(tid, var) {
                Ok(addr) => {
                    let v = self.globals[addr];
                    self.threads[tid.index()].locals[dst.index()] = v;
                    observer.on_access(tid, loc, addr, false, *atomic);
                    self.threads[tid.index()].pc += 1;
                }
                Err(bug) => self.set_bug(bug),
            },
            Op::Store { var, value, atomic } => match self.resolve_var(tid, var) {
                Ok(addr) => {
                    let v = value.eval(&self.threads[tid.index()].locals);
                    self.globals[addr] = v;
                    observer.on_access(tid, loc, addr, true, *atomic);
                    self.threads[tid.index()].pc += 1;
                }
                Err(bug) => self.set_bug(bug),
            },
            // Atomics and synchronisation operations are always visible and
            // never reach the invisible-execution path.
            other => unreachable!("invisible execution of visible op {:?}", other.mnemonic()),
        }
    }

    /// Execute one step of `tid`: its pending visible operation followed by
    /// the invisible operations up to the next visible one. The caller must
    /// ensure `tid` is currently enabled.
    pub fn step(&mut self, tid: ThreadId, observer: &mut dyn ExecObserver) {
        debug_assert!(self.thread_enabled(tid), "step() on a disabled thread");

        // A woken condition waiter re-acquires its mutex as its visible step.
        if let ThreadStatus::Reacquiring { mutex } = self.threads[tid.index()].status {
            self.mutexes[mutex].owner = Some(tid);
            observer.on_acquire(tid, SyncObjectId::Mutex(mutex));
            self.threads[tid.index()].status = ThreadStatus::Runnable;
            self.last = Some(tid);
            self.advance(tid, observer);
            return;
        }

        let instr = match self.pending_instr(tid) {
            Some(i) => i.clone(),
            None => {
                self.finish_thread(tid, observer);
                self.last = Some(tid);
                return;
            }
        };
        let loc = self.loc_of(tid);
        self.last = Some(tid);
        // `advance` never parks a thread at a control-flow instruction, but
        // the very first step of the initial thread may start here, so
        // non-`Op` instructions simply fall through to `advance`.
        if let Instr::Op { op } = instr {
            self.execute_visible_op(tid, &op, loc, observer);
        }
        if self.bug.is_none() {
            self.advance(tid, observer);
        }
    }

    fn execute_visible_op(
        &mut self,
        tid: ThreadId,
        op: &Op,
        loc: Loc,
        observer: &mut dyn ExecObserver,
    ) {
        macro_rules! resolve {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(bug) => {
                        self.set_bug(bug);
                        return;
                    }
                }
            };
        }
        match op {
            Op::Load { var, dst, atomic } => {
                let addr = resolve!(self.resolve_var(tid, var));
                let v = self.globals[addr];
                self.threads[tid.index()].locals[dst.index()] = v;
                observer.on_access(tid, loc, addr, false, *atomic);
                if *atomic {
                    observer.on_acquire(tid, SyncObjectId::AtomicCell(addr));
                    observer.on_release(tid, SyncObjectId::AtomicCell(addr));
                }
                self.threads[tid.index()].pc += 1;
            }
            Op::Store { var, value, atomic } => {
                let addr = resolve!(self.resolve_var(tid, var));
                let v = value.eval(&self.threads[tid.index()].locals);
                self.globals[addr] = v;
                observer.on_access(tid, loc, addr, true, *atomic);
                if *atomic {
                    observer.on_acquire(tid, SyncObjectId::AtomicCell(addr));
                    observer.on_release(tid, SyncObjectId::AtomicCell(addr));
                }
                self.threads[tid.index()].pc += 1;
            }
            Op::Rmw {
                var,
                op: rmw_op,
                operand,
                dst_old,
            } => {
                let addr = resolve!(self.resolve_var(tid, var));
                let old = self.globals[addr];
                let operand = operand.eval(&self.threads[tid.index()].locals);
                let new = match rmw_op {
                    RmwOp::Add => old.wrapping_add(operand),
                    RmwOp::Sub => old.wrapping_sub(operand),
                    RmwOp::Exchange => operand,
                    RmwOp::Max => old.max(operand),
                    RmwOp::Min => old.min(operand),
                };
                self.globals[addr] = new;
                if let Some(dst) = dst_old {
                    self.threads[tid.index()].locals[dst.index()] = old;
                }
                observer.on_access(tid, loc, addr, true, true);
                observer.on_acquire(tid, SyncObjectId::AtomicCell(addr));
                observer.on_release(tid, SyncObjectId::AtomicCell(addr));
                self.threads[tid.index()].pc += 1;
            }
            Op::Cas {
                var,
                expected,
                new,
                dst_success,
                dst_old,
            } => {
                let addr = resolve!(self.resolve_var(tid, var));
                let old = self.globals[addr];
                let expected = expected.eval(&self.threads[tid.index()].locals);
                let success = old == expected;
                if success {
                    let new = new.eval(&self.threads[tid.index()].locals);
                    self.globals[addr] = new;
                }
                if let Some(dst) = dst_success {
                    self.threads[tid.index()].locals[dst.index()] = i64::from(success);
                }
                if let Some(dst) = dst_old {
                    self.threads[tid.index()].locals[dst.index()] = old;
                }
                observer.on_access(tid, loc, addr, success, true);
                observer.on_acquire(tid, SyncObjectId::AtomicCell(addr));
                observer.on_release(tid, SyncObjectId::AtomicCell(addr));
                self.threads[tid.index()].pc += 1;
            }
            Op::Lock { mutex } => {
                let m = resolve!(self.resolve_mutex(tid, mutex));
                if self.mutexes[m].destroyed {
                    self.set_bug(Bug::UseAfterDestroy { thread: tid, loc });
                    return;
                }
                debug_assert!(self.mutexes[m].is_free());
                self.mutexes[m].owner = Some(tid);
                observer.on_acquire(tid, SyncObjectId::Mutex(m));
                self.threads[tid.index()].pc += 1;
            }
            Op::Unlock { mutex } => {
                let m = resolve!(self.resolve_mutex(tid, mutex));
                if self.mutexes[m].destroyed {
                    self.set_bug(Bug::UseAfterDestroy { thread: tid, loc });
                    return;
                }
                if self.mutexes[m].owner != Some(tid) {
                    self.set_bug(Bug::UnlockNotHeld { thread: tid, loc });
                    return;
                }
                self.mutexes[m].owner = None;
                observer.on_release(tid, SyncObjectId::Mutex(m));
                self.threads[tid.index()].pc += 1;
            }
            Op::MutexDestroy { mutex } => {
                let m = resolve!(self.resolve_mutex(tid, mutex));
                if self.mutexes[m].destroyed {
                    self.set_bug(Bug::UseAfterDestroy { thread: tid, loc });
                    return;
                }
                if self.mutexes[m].owner.is_some() {
                    self.set_bug(Bug::DestroyBusy { thread: tid, loc });
                    return;
                }
                self.mutexes[m].destroyed = true;
                self.threads[tid.index()].pc += 1;
            }
            Op::Wait { condvar, mutex } => {
                let cv = resolve!(self.resolve_condvar(tid, condvar));
                let m = resolve!(self.resolve_mutex(tid, mutex));
                if self.mutexes[m].destroyed {
                    self.set_bug(Bug::UseAfterDestroy { thread: tid, loc });
                    return;
                }
                if self.mutexes[m].owner != Some(tid) {
                    self.set_bug(Bug::WaitWithoutMutex { thread: tid, loc });
                    return;
                }
                self.mutexes[m].owner = None;
                observer.on_release(tid, SyncObjectId::Mutex(m));
                self.condvars[cv].waiters.push_back(tid);
                self.threads[tid.index()].status = ThreadStatus::WaitingCondvar {
                    condvar: cv,
                    mutex: m,
                };
                self.threads[tid.index()].pc += 1;
            }
            Op::Signal { condvar } => {
                let cv = resolve!(self.resolve_condvar(tid, condvar));
                observer.on_release(tid, SyncObjectId::Condvar(cv));
                if let Some(w) = self.condvars[cv].waiters.pop_front() {
                    self.wake_condvar_waiter(w, cv, observer);
                }
                self.threads[tid.index()].pc += 1;
            }
            Op::Broadcast { condvar } => {
                let cv = resolve!(self.resolve_condvar(tid, condvar));
                observer.on_release(tid, SyncObjectId::Condvar(cv));
                while let Some(w) = self.condvars[cv].waiters.pop_front() {
                    self.wake_condvar_waiter(w, cv, observer);
                }
                self.threads[tid.index()].pc += 1;
            }
            Op::SemWait { sem } => {
                let s = resolve!(self.resolve_sem(tid, sem));
                debug_assert!(self.sems[s].count > 0);
                self.sems[s].count -= 1;
                observer.on_acquire(tid, SyncObjectId::Sem(s));
                self.threads[tid.index()].pc += 1;
            }
            Op::SemPost { sem } => {
                let s = resolve!(self.resolve_sem(tid, sem));
                self.sems[s].count += 1;
                observer.on_release(tid, SyncObjectId::Sem(s));
                self.threads[tid.index()].pc += 1;
            }
            Op::BarrierWait { barrier } => {
                let b = resolve!(self.resolve_barrier(tid, barrier));
                observer.on_release(tid, SyncObjectId::Barrier(b));
                self.threads[tid.index()].pc += 1;
                if self.barriers[b].is_last_arrival() {
                    let waiting = std::mem::take(&mut self.barriers[b].waiting);
                    self.barriers[b].generation += 1;
                    observer.on_acquire(tid, SyncObjectId::Barrier(b));
                    for w in waiting {
                        observer.on_acquire(w, SyncObjectId::Barrier(b));
                        self.threads[w.index()].status = ThreadStatus::Runnable;
                        self.advance(w, observer);
                        if self.bug.is_some() {
                            return;
                        }
                    }
                } else {
                    self.barriers[b].waiting.push(tid);
                    self.threads[tid.index()].status = ThreadStatus::WaitingBarrier { barrier: b };
                }
            }
            Op::Spawn { template, dst } => {
                let child = ThreadId(self.threads.len());
                let locals = self.program.templates[template.index()].locals;
                let state = match self.thread_pool.pop() {
                    Some(mut pooled) => {
                        pooled.reinit(*template, locals, Some(tid));
                        pooled
                    }
                    None => ThreadState::new(*template, locals, Some(tid)),
                };
                self.threads.push(state);
                if let Some(dst) = dst {
                    self.threads[tid.index()].locals[dst.index()] = child.index() as i64;
                }
                observer.on_thread_created(tid, child);
                self.threads[tid.index()].pc += 1;
                self.advance(child, observer);
            }
            Op::Join { thread } => {
                let target = thread.eval(&self.threads[tid.index()].locals);
                if target < 0 || target as usize >= self.threads.len() {
                    self.set_bug(Bug::InvalidJoin {
                        thread: tid,
                        loc,
                        target,
                    });
                    return;
                }
                debug_assert!(self.threads[target as usize].status.is_finished());
                observer.on_join(tid, ThreadId(target as usize));
                self.threads[tid.index()].pc += 1;
            }
            Op::Yield => {
                self.threads[tid.index()].pc += 1;
            }
            Op::Assign { .. } | Op::Assert { .. } | Op::Fail { .. } => {
                unreachable!("local-only op treated as visible")
            }
        }
    }

    fn wake_condvar_waiter(&mut self, w: ThreadId, cv: usize, observer: &mut dyn ExecObserver) {
        // The signal happens-before everything the waiter does after waking,
        // so the acquire edge can be recorded at wake-up time.
        observer.on_acquire(w, SyncObjectId::Condvar(cv));
        if let ThreadStatus::WaitingCondvar { mutex, .. } = self.threads[w.index()].status {
            self.threads[w.index()].status = ThreadStatus::Reacquiring { mutex };
        }
    }

    // ----- driver -----

    /// Run the execution to a terminal state, consulting `choose` at every
    /// scheduling point.
    pub fn run(
        &mut self,
        choose: &mut dyn FnMut(&SchedulingPoint) -> ThreadId,
        observer: &mut dyn ExecObserver,
    ) -> ExecutionOutcome {
        if !self.started {
            self.started = true;
            self.advance(ThreadId(0), observer);
        }
        loop {
            if self.bug.is_some() {
                break;
            }
            if self.steps.len() >= self.config.max_steps {
                self.set_bug(Bug::StepLimitExceeded {
                    limit: self.config.max_steps,
                });
                break;
            }
            let enabled = self.enabled_threads();
            if enabled.is_empty() {
                if !self.all_finished() {
                    let blocked = (0..self.threads.len())
                        .map(ThreadId)
                        .filter(|t| !self.threads[t.index()].status.is_finished())
                        .collect();
                    self.set_bug(Bug::Deadlock { blocked });
                }
                break;
            }
            self.max_enabled = self.max_enabled.max(enabled.len());
            if enabled.len() > 1 {
                self.scheduling_points += 1;
            }
            let point = self.scheduling_point(&enabled);
            let mut choice = choose(&point);
            if !enabled.contains(&choice) {
                debug_assert!(false, "scheduler chose a disabled thread {choice}");
                choice = enabled[0];
            }
            self.steps.push(StepRecord {
                thread: choice,
                enabled: crate::ThreadSet::from_slice(&enabled),
                last_enabled: point.last_enabled,
                last: point.last,
                num_threads: point.num_threads,
            });
            self.step(choice, observer);
        }
        self.outcome()
    }

    fn outcome(&self) -> ExecutionOutcome {
        ExecutionOutcome {
            bug: self.bug.clone(),
            steps: self.steps.clone(),
            threads_created: self.threads.len(),
            max_enabled: self.max_enabled,
            scheduling_points: self.scheduling_points,
            diverged: self.diverged,
            fingerprint: self.fingerprint(),
        }
    }

    /// Hash of the current program state, used to check replay determinism.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for &g in &self.globals {
            h.write_i64(g);
        }
        for t in &self.threads {
            h.write_u64(t.pc as u64);
            h.write_u64(match t.status {
                ThreadStatus::Runnable => 1,
                ThreadStatus::WaitingCondvar { condvar, .. } => 100 + condvar as u64,
                ThreadStatus::Reacquiring { mutex } => 200 + mutex as u64,
                ThreadStatus::WaitingBarrier { barrier } => 300 + barrier as u64,
                ThreadStatus::Finished => 2,
            });
            for &l in &t.locals {
                h.write_i64(l);
            }
        }
        for m in &self.mutexes {
            h.write_u64(m.owner.map(|t| t.index() as u64 + 1).unwrap_or(0));
            h.write_u64(u64::from(m.destroyed));
        }
        for s in &self.sems {
            h.write_i64(s.count);
        }
        h.finish()
    }
}

fn scan_offsets(lens: impl Iterator<Item = u32>) -> Vec<usize> {
    lens.scan(0usize, |acc, len| {
        let base = *acc;
        *acc += len as usize;
        Some(base)
    })
    .collect()
}

/// Minimal FNV-1a hasher (avoids pulling in a hashing crate and keeps
/// fingerprints stable across platforms).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecConfig, VisibilityMode};
    use crate::observer::{CountingObserver, NoopObserver};
    use sct_ir::prelude::*;

    /// Round-robin driver used by the unit tests.
    fn run_round_robin(program: &Program, config: ExecConfig) -> ExecutionOutcome {
        let mut exec = Execution::new(program, config);
        exec.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        )
    }

    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    #[test]
    fn figure1_round_robin_is_bug_free() {
        let prog = figure1();
        let outcome = run_round_robin(&prog, ExecConfig::all_visible());
        assert!(outcome.bug.is_none(), "unexpected bug: {:?}", outcome.bug);
        assert_eq!(outcome.threads_created, 4);
        assert!(!outcome.diverged);
        // The round-robin schedule performs no preemptions and no delays.
        assert_eq!(outcome.preemption_count(), 0);
        assert_eq!(outcome.delay_count(), 0);
    }

    #[test]
    fn figure1_buggy_schedule_found_by_forcing_t3_early() {
        let prog = figure1();
        // Schedule: run main to completion, then t1 (one store), then t3.
        // t3 reads x == 1, y == 0 and the assertion fails, as in Example 1.
        let mut exec = Execution::new(&prog, ExecConfig::all_visible());
        let mut choose = |p: &SchedulingPoint| {
            // Prefer t3 once t1 has executed exactly one visible store.
            if p.is_enabled(ThreadId(3)) && p.step_index >= 5 {
                ThreadId(3)
            } else {
                p.round_robin_choice()
            }
        };
        let outcome = exec.run(&mut choose, &mut NoopObserver);
        // Depending on where step 5 falls this may or may not trip the
        // assertion; the deterministic property we check is reproducibility.
        let mut exec2 = Execution::new(&prog, ExecConfig::all_visible());
        let schedule = outcome.schedule();
        let mut i = 0usize;
        let mut replay = |p: &SchedulingPoint| {
            let t = schedule[i.min(schedule.len() - 1)];
            i += 1;
            if p.is_enabled(t) {
                t
            } else {
                p.round_robin_choice()
            }
        };
        let outcome2 = exec2.run(&mut replay, &mut NoopObserver);
        assert_eq!(outcome.fingerprint, outcome2.fingerprint);
        assert_eq!(outcome.is_buggy(), outcome2.is_buggy());
    }

    #[test]
    fn mutex_provides_mutual_exclusion_and_counts_sync_events() {
        let mut p = ProgramBuilder::new("counter");
        let counter = p.global("counter", 0);
        let m = p.mutex("m");
        let worker = p.thread("worker", |b| {
            let r = b.local("r");
            b.lock(m);
            b.load(counter, r);
            b.assign(r, add(r, 1));
            b.store(counter, r);
            b.unlock(m);
        });
        p.main(|b| {
            let h1 = b.local("h1");
            let h2 = b.local("h2");
            b.spawn_into(worker, h1);
            b.spawn_into(worker, h2);
            b.join(h1);
            b.join(h2);
            let r = b.local("r");
            b.load(counter, r);
            b.assert_cond(eq(r, 2), "counter == 2");
        });
        let prog = p.build().unwrap();
        let mut obs = CountingObserver::default();
        let mut exec = Execution::new(&prog, ExecConfig::sync_only());
        let outcome = exec.run(&mut |p: &SchedulingPoint| p.round_robin_choice(), &mut obs);
        assert!(outcome.bug.is_none(), "{:?}", outcome.bug);
        assert_eq!(obs.threads_created, 2);
        assert_eq!(obs.threads_finished, 3);
        assert_eq!(obs.joins, 2);
        // Two lock acquisitions, two unlock releases.
        assert_eq!(obs.acquires, 2);
        assert_eq!(obs.releases, 2);
    }

    #[test]
    fn lock_order_inversion_deadlocks_under_an_adversarial_schedule() {
        let mut p = ProgramBuilder::new("deadlock");
        let a = p.mutex("a");
        let bmx = p.mutex("b");
        let t1 = p.thread("t1", |b| {
            b.lock(a);
            b.lock(bmx);
            b.unlock(bmx);
            b.unlock(a);
        });
        let t2 = p.thread("t2", |b| {
            b.lock(bmx);
            b.lock(a);
            b.unlock(a);
            b.unlock(bmx);
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
        });
        let prog = p.build().unwrap();

        // Round robin: no deadlock (t1 runs to completion first).
        let ok = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(ok.bug.is_none());

        // Alternate t1/t2 after both exist: t1 takes a, t2 takes b => deadlock.
        let mut exec = Execution::new(&prog, ExecConfig::sync_only());
        let mut choose = |p: &SchedulingPoint| {
            if p.is_enabled(ThreadId(1)) && p.is_enabled(ThreadId(2)) {
                // Alternate between the two workers.
                if p.last == Some(ThreadId(1)) {
                    ThreadId(2)
                } else {
                    ThreadId(1)
                }
            } else {
                p.round_robin_choice()
            }
        };
        let outcome = exec.run(&mut choose, &mut NoopObserver);
        assert!(
            matches!(outcome.bug, Some(Bug::Deadlock { .. })),
            "expected deadlock, got {:?}",
            outcome.bug
        );
        assert!(outcome.is_buggy());
    }

    #[test]
    fn condvar_wait_signal_round_trip() {
        let mut p = ProgramBuilder::new("condvar");
        let ready = p.global("ready", 0);
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let consumer = p.thread("consumer", |b| {
            let r = b.local("r");
            b.lock(m);
            b.load(ready, r);
            b.while_(eq(r, 0), |b| {
                b.wait(cv, m);
                b.load(ready, r);
            });
            b.unlock(m);
            b.assert_cond(eq(r, 1), "saw ready");
        });
        let producer = p.thread("producer", |b| {
            b.lock(m);
            b.store(ready, 1);
            b.signal(cv);
            b.unlock(m);
        });
        p.main(|b| {
            let h1 = b.local("h1");
            let h2 = b.local("h2");
            b.spawn_into(consumer, h1);
            b.spawn_into(producer, h2);
            b.join(h1);
            b.join(h2);
        });
        let prog = p.build().unwrap();
        // Under round-robin the consumer runs first, waits, and is then
        // signalled by the producer; the program must terminate cleanly.
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(outcome.bug.is_none(), "{:?}", outcome.bug);
        assert!(!outcome.diverged);
    }

    #[test]
    fn lost_signal_is_a_deadlock() {
        // The classic bug: the producer signals before the consumer waits and
        // the signal is lost, so the consumer blocks forever.
        let mut p = ProgramBuilder::new("lost-signal");
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let consumer = p.thread("consumer", |b| {
            b.lock(m);
            b.wait(cv, m); // unconditional wait: loses the wake-up
            b.unlock(m);
        });
        let producer = p.thread("producer", |b| {
            b.signal(cv);
        });
        p.main(|b| {
            b.spawn(producer);
            b.spawn(consumer);
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(matches!(outcome.bug, Some(Bug::Deadlock { .. })));
    }

    #[test]
    fn barrier_releases_all_participants() {
        let mut p = ProgramBuilder::new("barrier");
        let done = p.global("done", 0);
        let bar = p.barrier("bar", 3);
        let worker = p.thread("worker", |b| {
            b.barrier_wait(bar);
            b.fetch_add(done, 1);
        });
        p.main(|b| {
            let h1 = b.local("h1");
            let h2 = b.local("h2");
            b.spawn_into(worker, h1);
            b.spawn_into(worker, h2);
            b.barrier_wait(bar);
            b.join(h1);
            b.join(h2);
            let r = b.local("r");
            b.load(done, r);
            b.assert_cond(eq(r, 2), "both workers passed the barrier");
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(outcome.bug.is_none(), "{:?}", outcome.bug);
    }

    #[test]
    fn semaphores_enforce_capacity() {
        let mut p = ProgramBuilder::new("sem");
        let in_critical = p.global("in_critical", 0);
        let s = p.sem("s", 1);
        let worker = p.thread("worker", |b| {
            let r = b.local("r");
            b.sem_wait(s);
            b.load(in_critical, r);
            b.assert_cond(eq(r, 0), "critical section empty");
            b.store(in_critical, 1);
            b.store(in_critical, 0);
            b.sem_post(s);
        });
        p.main(|b| {
            b.spawn(worker);
            b.spawn(worker);
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(outcome.bug.is_none(), "{:?}", outcome.bug);
    }

    #[test]
    fn unlock_not_held_is_reported() {
        let mut p = ProgramBuilder::new("bad-unlock");
        let m = p.mutex("m");
        p.main(|b| {
            b.unlock(m);
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(matches!(outcome.bug, Some(Bug::UnlockNotHeld { .. })));
    }

    #[test]
    fn use_after_destroy_is_reported() {
        let mut p = ProgramBuilder::new("use-after-destroy");
        let m = p.mutex("m");
        p.main(|b| {
            b.mutex_destroy(m);
            b.lock(m);
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        assert!(matches!(outcome.bug, Some(Bug::UseAfterDestroy { .. })));
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut p = ProgramBuilder::new("oob");
        let arr = p.global_array_zeroed("arr", 3);
        p.main(|b| {
            let i = b.local_init("i", 5);
            b.store(arr.at(i), 1);
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::all_visible());
        assert!(matches!(outcome.bug, Some(Bug::OutOfBounds { len: 3, .. })));
    }

    #[test]
    fn assertion_failure_reports_message_and_thread() {
        let mut p = ProgramBuilder::new("assert");
        p.main(|b| {
            let r = b.local_init("r", 3);
            b.assert_cond(eq(r, 4), "three is four");
        });
        let prog = p.build().unwrap();
        let outcome = run_round_robin(&prog, ExecConfig::sync_only());
        match outcome.bug {
            Some(Bug::AssertionFailure {
                thread, ref msg, ..
            }) => {
                assert_eq!(thread, ThreadId(0));
                assert_eq!(msg, "three is four");
            }
            ref other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn racy_only_visibility_limits_scheduling_points() {
        // A benign racy counter: with AllSharedAccesses the data accesses are
        // scheduling points; with an empty racy set they are invisible.
        let mut p = ProgramBuilder::new("visibility");
        let x = p.global("x", 0);
        let t = p.thread("t", |b| {
            let r = b.local("r");
            b.load(x, r);
            b.store(x, add(r, 1));
        });
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();

        let all = run_round_robin(&prog, ExecConfig::all_visible());
        let sync_only = run_round_robin(
            &prog,
            ExecConfig {
                visibility: VisibilityMode::racy([]),
                ..ExecConfig::default()
            },
        );
        assert!(all.steps.len() > sync_only.steps.len());
        assert!(all.bug.is_none());
        assert!(sync_only.bug.is_none());
    }

    #[test]
    fn step_limit_reports_divergence_not_bug() {
        let mut p = ProgramBuilder::new("spin");
        let flag = p.global("flag", 0);
        p.main(|b| {
            let r = b.local("r");
            b.load(flag, r);
            b.while_(eq(r, 0), |b| {
                b.load(flag, r);
            });
        });
        let prog = p.build().unwrap();
        let cfg = ExecConfig {
            visibility: VisibilityMode::AllSharedAccesses,
            max_steps: 50,
            ..ExecConfig::default()
        };
        let outcome = run_round_robin(&prog, cfg);
        assert!(outcome.diverged);
        assert!(!outcome.is_buggy());
    }

    #[test]
    fn reset_reproduces_a_fresh_execution_exactly() {
        // Two runs from one reused instance must equal two fresh instances:
        // same StepRecords, same fingerprints, same outcome classification.
        let prog = figure1();
        let config = ExecConfig::all_visible();

        let mut reused = Execution::new_shared(&prog, &config);
        let a1 = reused.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        );
        reused.reset();
        let a2 = reused.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        );

        let fresh1 = run_round_robin(&prog, ExecConfig::all_visible());
        let fresh2 = run_round_robin(&prog, ExecConfig::all_visible());

        assert_eq!(a1.steps, fresh1.steps);
        assert_eq!(a2.steps, fresh2.steps);
        assert_eq!(a1.fingerprint, fresh1.fingerprint);
        assert_eq!(a2.fingerprint, fresh2.fingerprint);
        assert_eq!(a1.threads_created, a2.threads_created);
        assert_eq!(a1.scheduling_points, a2.scheduling_points);
        assert_eq!(a1.is_buggy(), a2.is_buggy());
    }

    #[test]
    fn reset_clears_bugs_sync_state_and_step_records() {
        // Drive an execution into a deadlock, then reset and check the rewind
        // restored a clean initial state (including mutex/condvar state).
        let mut p = ProgramBuilder::new("deadlock");
        let a = p.mutex("a");
        let bmx = p.mutex("b");
        let t1 = p.thread("t1", |b| {
            b.lock(a);
            b.lock(bmx);
            b.unlock(bmx);
            b.unlock(a);
        });
        let t2 = p.thread("t2", |b| {
            b.lock(bmx);
            b.lock(a);
            b.unlock(a);
            b.unlock(bmx);
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
        });
        let prog = p.build().unwrap();
        let config = ExecConfig::sync_only();
        let mut exec = Execution::new_shared(&prog, &config);
        let mut adversarial = |p: &SchedulingPoint| {
            if p.is_enabled(ThreadId(1)) && p.is_enabled(ThreadId(2)) {
                if p.last == Some(ThreadId(1)) {
                    ThreadId(2)
                } else {
                    ThreadId(1)
                }
            } else {
                p.round_robin_choice()
            }
        };
        let deadlocked = exec.run(&mut adversarial, &mut NoopObserver);
        assert!(matches!(deadlocked.bug, Some(Bug::Deadlock { .. })));
        assert_eq!(exec.thread_count(), 3);

        exec.reset();
        assert!(exec.bug().is_none());
        assert_eq!(exec.thread_count(), 1);
        // The benign round-robin schedule must now complete cleanly.
        let clean = exec.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        );
        assert!(clean.bug.is_none(), "{:?}", clean.bug);
        let reference = run_round_robin(&prog, ExecConfig::sync_only());
        assert_eq!(clean.steps, reference.steps);
        assert_eq!(clean.fingerprint, reference.fingerprint);
    }

    #[test]
    fn reset_restores_globals_sems_and_barriers() {
        let mut p = ProgramBuilder::new("state");
        let x = p.global("x", 7);
        let s = p.sem("s", 2);
        let bar = p.barrier("bar", 2);
        let w = p.thread("w", |b| {
            b.sem_wait(s);
            b.barrier_wait(bar);
            b.store(x, 99);
        });
        p.main(|b| {
            let h = b.local("h");
            b.spawn_into(w, h);
            b.sem_wait(s);
            b.barrier_wait(bar);
            b.join(h);
        });
        let prog = p.build().unwrap();
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        let first = exec.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        );
        assert!(first.bug.is_none(), "{:?}", first.bug);
        assert_eq!(exec.global_cell(0), 99);

        exec.reset();
        assert_eq!(exec.global_cell(0), 7, "global rewound to its initialiser");
        let second = exec.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut NoopObserver,
        );
        assert!(second.bug.is_none(), "{:?}", second.bug);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.steps, second.steps);
    }

    #[test]
    fn fingerprint_is_deterministic_across_identical_runs() {
        let prog = figure1();
        let a = run_round_robin(&prog, ExecConfig::all_visible());
        let b = run_round_robin(&prog, ExecConfig::all_visible());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.schedule(), b.schedule());
    }

    #[test]
    fn scheduling_point_statistics_are_recorded() {
        let prog = figure1();
        let outcome = run_round_robin(&prog, ExecConfig::all_visible());
        assert!(outcome.max_enabled >= 2);
        assert!(outcome.scheduling_points > 0);
        assert_eq!(outcome.threads_created, 4);
    }
}

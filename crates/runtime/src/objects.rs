//! Runtime state of synchronisation objects.

use crate::thread::ThreadId;
use std::collections::VecDeque;

/// State of a single mutex instance.
#[derive(Debug, Clone, Default)]
pub struct MutexState {
    /// Current owner, if held.
    pub owner: Option<ThreadId>,
    /// Whether the mutex has been destroyed; any further use is a bug.
    pub destroyed: bool,
}

impl MutexState {
    /// True when the mutex can be acquired.
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }
}

/// State of a single condition-variable instance.
#[derive(Debug, Clone, Default)]
pub struct CondvarState {
    /// Threads currently blocked in `wait`, in arrival (FIFO) order.
    ///
    /// FIFO wake-up keeps the runtime deterministic: `signal` always wakes
    /// the longest waiting thread. Nondeterminism in wake-up order is instead
    /// explored through scheduling of the woken threads' re-acquisitions.
    pub waiters: VecDeque<ThreadId>,
}

/// State of a single counting semaphore instance.
#[derive(Debug, Clone, Default)]
pub struct SemState {
    /// Current count; `sem_wait` blocks while this is zero.
    pub count: i64,
}

/// State of a single barrier instance.
#[derive(Debug, Clone, Default)]
pub struct BarrierState {
    /// Threads currently blocked at the barrier.
    pub waiting: Vec<ThreadId>,
    /// Number of participants required to release the barrier.
    pub participants: u32,
    /// Number of times the barrier has released (generation counter).
    pub generation: u64,
}

impl BarrierState {
    /// True when one more arrival will release the barrier.
    pub fn is_last_arrival(&self) -> bool {
        (self.waiting.len() + 1) as u32 >= self.participants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_free_until_owned() {
        let mut m = MutexState::default();
        assert!(m.is_free());
        m.owner = Some(ThreadId(2));
        assert!(!m.is_free());
    }

    #[test]
    fn barrier_last_arrival_accounting() {
        let mut b = BarrierState {
            participants: 3,
            ..Default::default()
        };
        assert!(!b.is_last_arrival());
        b.waiting.push(ThreadId(1));
        assert!(!b.is_last_arrival());
        b.waiting.push(ThreadId(2));
        assert!(b.is_last_arrival());
    }

    #[test]
    fn condvar_waiters_are_fifo() {
        let mut cv = CondvarState::default();
        cv.waiters.push_back(ThreadId(1));
        cv.waiters.push_back(ThreadId(2));
        assert_eq!(cv.waiters.pop_front(), Some(ThreadId(1)));
        assert_eq!(cv.waiters.pop_front(), Some(ThreadId(2)));
    }
}

//! A compact set of thread ids.
//!
//! [`StepRecord`](crate::StepRecord) stores the enabled set of every step of
//! every execution; with a `Vec<ThreadId>` that was one heap allocation per
//! step in the exploration hot path. `ThreadSet` keeps thread ids 0..64 in a
//! single inline word — enough for 51 of the 52 SCTBench programs — and
//! spills to heap words only for programs with more threads (twostage_100
//! creates 101).

use crate::thread::ThreadId;

const INLINE_BITS: usize = 64;

/// A set of [`ThreadId`]s backed by a small bitset: one inline 64-bit word
/// for ids `0..64`, heap words for larger ids.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct ThreadSet {
    /// Bit `i` set ⇔ thread `i` is in the set, for `i < 64`.
    lo: u64,
    /// Bit `i` of word `w` set ⇔ thread `64 * (w + 1) + i` is in the set.
    /// Empty (no allocation) while every member is below 64.
    hi: Vec<u64>,
}

impl ThreadSet {
    /// The empty set.
    pub fn new() -> Self {
        ThreadSet::default()
    }

    /// The set of the given threads.
    pub fn from_slice(threads: &[ThreadId]) -> Self {
        let mut set = ThreadSet::new();
        for &t in threads {
            set.insert(t);
        }
        set
    }

    /// Add `t` to the set.
    pub fn insert(&mut self, t: ThreadId) {
        let i = t.index();
        if i < INLINE_BITS {
            self.lo |= 1 << i;
        } else {
            let word = i / INLINE_BITS - 1;
            if self.hi.len() <= word {
                self.hi.resize(word + 1, 0);
            }
            self.hi[word] |= 1 << (i % INLINE_BITS);
        }
    }

    /// Whether `t` is in the set.
    pub fn contains(&self, t: ThreadId) -> bool {
        let i = t.index();
        if i < INLINE_BITS {
            self.lo & (1 << i) != 0
        } else {
            self.hi
                .get(i / INLINE_BITS - 1)
                .is_some_and(|w| w & (1 << (i % INLINE_BITS)) != 0)
        }
    }

    /// Number of threads in the set.
    pub fn len(&self) -> usize {
        self.lo.count_ones() as usize
            + self
                .hi
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == 0 && self.hi.iter().all(|&w| w == 0)
    }

    /// Add every member of `other` to this set.
    ///
    /// Spill storage grows only to `other`'s word count, and `other` never
    /// ends in an all-zero spill word (insertion only allocates a word to
    /// set a bit in it), so a union cannot introduce trailing zero words —
    /// which keeps the derived `PartialEq`/`Hash` (comparing `hi`
    /// structurally) an equality over set *contents*.
    pub fn union_with(&mut self, other: &ThreadSet) {
        self.lo |= other.lo;
        if self.hi.len() < other.hi.len() {
            self.hi.resize(other.hi.len(), 0);
        }
        for (w, &bits) in self.hi.iter_mut().zip(other.hi.iter()) {
            *w |= bits;
        }
    }

    /// The members in ascending thread-id order.
    pub fn iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        std::iter::once(self.lo)
            .chain(self.hi.iter().copied())
            .enumerate()
            .flat_map(|(word, bits)| {
                BitIter(bits).map(move |bit| ThreadId(word * INLINE_BITS + bit))
            })
    }
}

impl FromIterator<ThreadId> for ThreadSet {
    fn from_iter<I: IntoIterator<Item = ThreadId>>(iter: I) -> Self {
        let mut set = ThreadSet::new();
        for t in iter {
            set.insert(t);
        }
        set
    }
}

impl std::fmt::Debug for ThreadSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|t| t.index()))
            .finish()
    }
}

/// Iterator over the set bit positions of one word, low to high.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_membership_up_to_64_threads() {
        // Every subset shape we care about below 64 ids: singletons, the
        // extremes, and a scattered pattern — membership must survive the
        // Vec<ThreadId> → ThreadSet round trip bit for bit.
        for n in 1..=64usize {
            let members: Vec<ThreadId> = (0..n).filter(|i| i % 3 != 1).map(ThreadId).collect();
            let set = ThreadSet::from_slice(&members);
            for i in 0..n {
                assert_eq!(
                    set.contains(ThreadId(i)),
                    i % 3 != 1,
                    "membership of thread {i} with {n} threads"
                );
            }
            assert_eq!(set.len(), members.len());
            let back: Vec<ThreadId> = set.iter().collect();
            assert_eq!(back, members, "iteration order is ascending");
            assert!(!set.contains(ThreadId(n)), "absent id {n} must not appear");
        }
        let full: ThreadSet = (0..64).map(ThreadId).collect();
        assert_eq!(full.len(), 64);
        assert!(full.contains(ThreadId(63)));
        assert!(!full.contains(ThreadId(64)));
    }

    #[test]
    fn spills_past_64_threads_without_losing_low_members() {
        // twostage_100 creates 101 threads; the spill words must compose with
        // the inline word transparently.
        let members: Vec<ThreadId> = [0, 1, 63, 64, 65, 100, 127, 128, 200]
            .into_iter()
            .map(ThreadId)
            .collect();
        let set = ThreadSet::from_slice(&members);
        for &t in &members {
            assert!(set.contains(t), "{t} lost");
        }
        for absent in [2, 62, 66, 99, 101, 129, 199, 201] {
            assert!(!set.contains(ThreadId(absent)), "{absent} phantom");
        }
        assert_eq!(set.len(), members.len());
        assert_eq!(set.iter().collect::<Vec<_>>(), members);
    }

    #[test]
    fn empty_set_behaves() {
        let set = ThreadSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        assert!(!set.contains(ThreadId(0)));
        assert!(!set.contains(ThreadId(500)));
    }

    #[test]
    fn inline_to_spill_boundary_round_trips_exactly() {
        // 63 threads: strictly inline. 64: the full inline word, still no
        // spill. 65: the first spilled id. Membership, length and iteration
        // order must round-trip identically across the boundary.
        for n in [63usize, 64, 65] {
            let members: Vec<ThreadId> = (0..n).map(ThreadId).collect();
            let set = ThreadSet::from_slice(&members);
            assert_eq!(set.len(), n, "{n} threads");
            for i in 0..n {
                assert!(set.contains(ThreadId(i)), "thread {i} of {n} lost");
            }
            assert!(!set.contains(ThreadId(n)), "one past the end at {n}");
            assert!(!set.contains(ThreadId(n + 64)), "a word past the end");
            let back: Vec<ThreadId> = set.iter().collect();
            assert_eq!(back, members, "{n}-thread iteration round trip");
        }
        // The boundary ids themselves, in isolation: 63 is the last inline
        // bit, 64 the first bit of the first spill word.
        let edge = ThreadSet::from_slice(&[ThreadId(63), ThreadId(64)]);
        assert!(edge.contains(ThreadId(63)) && edge.contains(ThreadId(64)));
        assert!(!edge.contains(ThreadId(62)) && !edge.contains(ThreadId(65)));
        assert_eq!(edge.len(), 2);
    }

    #[test]
    fn union_composes_inline_and_spill_words() {
        let mut a = ThreadSet::from_slice(&[ThreadId(1), ThreadId(63)]);
        let b = ThreadSet::from_slice(&[ThreadId(63), ThreadId(64), ThreadId(130)]);
        a.union_with(&b);
        for t in [1, 63, 64, 130] {
            assert!(a.contains(ThreadId(t)), "{t} missing after union");
        }
        for t in [0, 62, 65, 129, 131] {
            assert!(!a.contains(ThreadId(t)), "{t} phantom after union");
        }
        assert_eq!(a.len(), 4);
        // The union must equal the set built directly from the members —
        // including derived equality, i.e. no trailing-zero spill words.
        let direct: ThreadSet = [1, 63, 64, 130].into_iter().map(ThreadId).collect();
        assert_eq!(a, direct);

        // Spilled ∪ inline-only must not grow the spill storage, so equality
        // with the directly-built set again holds structurally.
        let mut c = b.clone();
        c.union_with(&ThreadSet::from_slice(&[ThreadId(2)]));
        let direct: ThreadSet = [2, 63, 64, 130].into_iter().map(ThreadId).collect();
        assert_eq!(c, direct);

        // Union with the empty set is the identity, both directions.
        let mut e = ThreadSet::new();
        e.union_with(&b);
        assert_eq!(e, b);
        let mut f = b.clone();
        f.union_with(&ThreadSet::new());
        assert_eq!(f, b);
    }

    #[test]
    fn equality_ignores_trailing_zero_spill_words() {
        // Two sets with the same members built along different insertion
        // paths must compare equal when neither allocated spill words.
        let a = ThreadSet::from_slice(&[ThreadId(3), ThreadId(7)]);
        let b: ThreadSet = [ThreadId(7), ThreadId(3)].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "{3, 7}");
    }
}

//! Execution configuration: which memory accesses are visible operations and
//! how long an execution may run.

use sct_ir::Loc;
use std::collections::HashSet;

/// Which shared-memory accesses are treated as visible operations (and hence
/// produce scheduling points). Synchronisation operations and atomic accesses
/// are always visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisibilityMode {
    /// Only synchronisation operations and atomics are visible. This mirrors
    /// testing a data-race-free program, where it is sound to schedule only
    /// at synchronisation operations (§5 of the paper).
    SyncOnly,
    /// Every shared-memory access is a visible operation. Used by the
    /// race-detection phase and available for exhaustive exploration of very
    /// small programs.
    AllSharedAccesses,
    /// Synchronisation operations, atomics, and non-atomic accesses whose
    /// static location was identified as racy by the race-detection phase.
    /// This is the configuration used for the study's SCT phases.
    RacyOnly(HashSet<Loc>),
}

impl Default for VisibilityMode {
    fn default() -> Self {
        VisibilityMode::RacyOnly(HashSet::new())
    }
}

impl VisibilityMode {
    /// Construct the study configuration from a set of racy locations.
    pub fn racy(locs: impl IntoIterator<Item = Loc>) -> Self {
        VisibilityMode::RacyOnly(locs.into_iter().collect())
    }

    /// Whether a non-atomic memory access at `loc` is visible under this mode.
    pub fn data_access_visible(&self, loc: Loc) -> bool {
        match self {
            VisibilityMode::SyncOnly => false,
            VisibilityMode::AllSharedAccesses => true,
            VisibilityMode::RacyOnly(set) => set.contains(&loc),
        }
    }
}

/// Execution limits and visibility configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Visibility of shared-memory accesses.
    pub visibility: VisibilityMode,
    /// Maximum number of steps (visible operations) per execution. Exceeding
    /// this limit terminates the execution with [`crate::Bug::StepLimitExceeded`],
    /// which is reported as a divergence rather than a bug.
    pub max_steps: usize,
    /// Maximum number of consecutive invisible instructions executed within a
    /// single step; exceeding it indicates a local infinite loop in the
    /// program under test (a modelling error, reported as divergence).
    pub max_invisible_ops_per_step: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            visibility: VisibilityMode::default(),
            max_steps: 20_000,
            max_invisible_ops_per_step: 100_000,
        }
    }
}

impl ExecConfig {
    /// Configuration with every shared access visible (race-detection phase).
    pub fn all_visible() -> Self {
        ExecConfig {
            visibility: VisibilityMode::AllSharedAccesses,
            ..Default::default()
        }
    }

    /// Configuration scheduling only at synchronisation operations.
    pub fn sync_only() -> Self {
        ExecConfig {
            visibility: VisibilityMode::SyncOnly,
            ..Default::default()
        }
    }

    /// Configuration with the given racy locations promoted to visible ops.
    pub fn with_racy_locations(locs: impl IntoIterator<Item = Loc>) -> Self {
        ExecConfig {
            visibility: VisibilityMode::racy(locs),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::TemplateId;

    fn loc(t: u32, pc: u32) -> Loc {
        Loc {
            template: TemplateId(t),
            pc,
        }
    }

    #[test]
    fn default_is_racy_only_with_empty_set() {
        let cfg = ExecConfig::default();
        assert!(!cfg.visibility.data_access_visible(loc(0, 0)));
    }

    #[test]
    fn visibility_modes_classify_data_accesses() {
        assert!(!VisibilityMode::SyncOnly.data_access_visible(loc(0, 1)));
        assert!(VisibilityMode::AllSharedAccesses.data_access_visible(loc(0, 1)));
        let racy = VisibilityMode::racy([loc(1, 5)]);
        assert!(racy.data_access_visible(loc(1, 5)));
        assert!(!racy.data_access_visible(loc(1, 6)));
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(
            ExecConfig::all_visible().visibility,
            VisibilityMode::AllSharedAccesses
        );
        assert_eq!(ExecConfig::sync_only().visibility, VisibilityMode::SyncOnly);
        let cfg = ExecConfig::with_racy_locations([loc(0, 2)]);
        assert!(cfg.visibility.data_access_visible(loc(0, 2)));
    }
}

//! Thread identities and per-thread state.

use sct_ir::TemplateId;
use std::fmt;

/// A dynamic thread identifier. Threads are numbered in creation order: the
/// initial thread is 0, the first spawned thread is 1, and so on. This order
/// is what the non-preemptive round-robin deterministic scheduler — and
/// therefore delay bounding — is defined over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Parked at a visible instruction (`pc`); may or may not be enabled
    /// depending on that instruction's precondition (e.g. mutex availability).
    Runnable,
    /// Blocked inside `pthread_cond_wait`, waiting for a signal or broadcast.
    /// The thread must re-acquire `mutex` once woken.
    WaitingCondvar { condvar: usize, mutex: usize },
    /// Woken from a condition wait; must re-acquire `mutex` before resuming.
    Reacquiring { mutex: usize },
    /// Blocked at a barrier that has not yet released.
    WaitingBarrier { barrier: usize },
    /// The thread has executed `Halt`.
    Finished,
}

impl ThreadStatus {
    /// True once the thread has terminated.
    pub fn is_finished(self) -> bool {
        matches!(self, ThreadStatus::Finished)
    }
}

/// Mutable per-thread interpreter state.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// The template this thread executes.
    pub template: TemplateId,
    /// Index of the next instruction to execute within the template body.
    pub pc: usize,
    /// Local slots, zero-initialised.
    pub locals: Vec<i64>,
    /// Lifecycle status.
    pub status: ThreadStatus,
    /// The thread that spawned this one (None for the initial thread).
    pub parent: Option<ThreadId>,
}

impl ThreadState {
    /// Create the state for a freshly spawned thread.
    pub fn new(template: TemplateId, locals: u32, parent: Option<ThreadId>) -> Self {
        ThreadState {
            template,
            pc: 0,
            locals: vec![0; locals as usize],
            status: ThreadStatus::Runnable,
            parent,
        }
    }

    /// Rewrite this state in place to that of a freshly spawned thread,
    /// keeping the `locals` allocation.
    pub fn reinit(&mut self, template: TemplateId, locals: u32, parent: Option<ThreadId>) {
        self.template = template;
        self.pc = 0;
        self.locals.clear();
        self.locals.resize(locals as usize, 0);
        self.status = ThreadStatus::Runnable;
        self.parent = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_order() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert!(ThreadId(1) < ThreadId(2));
        assert_eq!(ThreadId(5).index(), 5);
    }

    #[test]
    fn new_thread_state_is_runnable_at_pc_zero() {
        let t = ThreadState::new(TemplateId(1), 4, Some(ThreadId(0)));
        assert_eq!(t.pc, 0);
        assert_eq!(t.locals, vec![0; 4]);
        assert_eq!(t.status, ThreadStatus::Runnable);
        assert!(!t.status.is_finished());
        assert_eq!(t.parent, Some(ThreadId(0)));
    }

    #[test]
    fn finished_status_classification() {
        assert!(ThreadStatus::Finished.is_finished());
        assert!(!ThreadStatus::Runnable.is_finished());
        assert!(!ThreadStatus::Reacquiring { mutex: 0 }.is_finished());
    }
}

//! Per-execution outcome: the recorded schedule, bug information and summary
//! statistics consumed by the exploration layer and the experiment harness.

use crate::bug::Bug;
use crate::thread::ThreadId;
use crate::threadset::ThreadSet;

/// One recorded step of an execution: the chosen thread plus the information
/// needed to recompute preemption and delay counts after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Threads that were enabled at the scheduling point.
    pub enabled: ThreadSet,
    /// Thread that executed this step.
    pub thread: ThreadId,
    /// Whether the previously running thread was still enabled.
    pub last_enabled: bool,
    /// The previously running thread.
    pub last: Option<ThreadId>,
    /// Number of threads created when the step was taken.
    pub num_threads: usize,
}

/// The result of running one execution (one terminal schedule).
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The bug that terminated the execution, if any.
    pub bug: Option<Bug>,
    /// The executed schedule, one record per step.
    pub steps: Vec<StepRecord>,
    /// Total number of threads created (including the initial thread).
    pub threads_created: usize,
    /// Maximum number of simultaneously enabled threads over the execution.
    pub max_enabled: usize,
    /// Number of scheduling points at which more than one thread was enabled.
    pub scheduling_points: usize,
    /// True when the execution was cut off by the step limit rather than
    /// reaching a genuinely terminal state.
    pub diverged: bool,
    /// Hash of the final program state (globals, locals, thread statuses);
    /// used to check replay determinism.
    pub fingerprint: u64,
}

impl ExecutionOutcome {
    /// Whether the execution exposed a bug (divergence does not count).
    pub fn is_buggy(&self) -> bool {
        self.bug.as_ref().map(Bug::counts_as_bug).unwrap_or(false)
    }

    /// The executed schedule as a plain list of thread ids.
    pub fn schedule(&self) -> Vec<ThreadId> {
        self.steps.iter().map(|s| s.thread).collect()
    }

    /// Recompute the preemption count `PC` of the executed schedule from the
    /// per-step records (used by tests and the worst-case analysis of
    /// Figure 4). A step is a preemption when the previously running thread
    /// was still enabled but a different thread was chosen.
    pub fn preemption_count(&self) -> u32 {
        self.steps
            .iter()
            .filter(|s| match s.last {
                Some(last) => s.last_enabled && last != s.thread,
                None => false,
            })
            .count() as u32
    }

    /// Recompute the delay count `DC` of the executed schedule with respect
    /// to the non-preemptive round-robin deterministic scheduler.
    pub fn delay_count(&self) -> u32 {
        self.steps
            .iter()
            .map(|s| {
                let n = s.num_threads.max(1);
                let start = match s.last {
                    None => 0,
                    Some(last) => last.index(),
                };
                let distance = (s.thread.index() + n - start) % n;
                let mut delays = 0u32;
                for x in 0..distance {
                    let skipped = ThreadId((start + x) % n);
                    let skipped_enabled = if Some(skipped) == s.last {
                        s.last_enabled
                    } else {
                        s.enabled.contains(skipped)
                    };
                    if skipped_enabled {
                        delays += 1;
                    }
                }
                delays
            })
            .sum()
    }

    /// Number of context switches (steps where the thread differs from the
    /// previous step's thread).
    pub fn context_switches(&self) -> u32 {
        self.steps
            .iter()
            .filter(|s| matches!(s.last, Some(last) if last != s.thread))
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(
        thread: usize,
        enabled: &[usize],
        last: Option<usize>,
        last_enabled: bool,
        num_threads: usize,
    ) -> StepRecord {
        StepRecord {
            thread: ThreadId(thread),
            enabled: enabled.iter().map(|&i| ThreadId(i)).collect(),
            last_enabled,
            last: last.map(ThreadId),
            num_threads,
        }
    }

    #[test]
    fn enabled_set_round_trips_through_the_bitset() {
        let s = step(0, &[0, 2, 5], None, false, 6);
        assert!(s.enabled.contains(ThreadId(0)));
        assert!(!s.enabled.contains(ThreadId(1)));
        assert!(s.enabled.contains(ThreadId(5)));
        assert_eq!(s.enabled.len(), 3);
    }

    fn outcome(steps: Vec<StepRecord>) -> ExecutionOutcome {
        ExecutionOutcome {
            bug: None,
            steps,
            threads_created: 3,
            max_enabled: 2,
            scheduling_points: 0,
            diverged: false,
            fingerprint: 0,
        }
    }

    #[test]
    fn preemption_count_counts_only_preemptive_switches() {
        // t0 runs, then t1 is chosen while t0 is still enabled (preemption),
        // then t0 is chosen while t1 is disabled (non-preemptive switch).
        let o = outcome(vec![
            step(0, &[0, 1], None, false, 2),
            step(1, &[0, 1], Some(0), true, 2),
            step(0, &[0], Some(1), false, 2),
        ]);
        assert_eq!(o.preemption_count(), 1);
        assert_eq!(o.context_switches(), 2);
    }

    #[test]
    fn delay_count_is_at_least_preemption_count() {
        let o = outcome(vec![
            step(0, &[0, 1, 2], None, false, 3),
            step(2, &[0, 1, 2], Some(0), true, 3), // skips enabled 0 and 1 => 2 delays, 1 preemption
            step(2, &[2], Some(2), true, 3),
        ]);
        assert_eq!(o.preemption_count(), 1);
        assert_eq!(o.delay_count(), 2);
        assert!(o.delay_count() >= o.preemption_count());
    }

    #[test]
    fn round_robin_schedule_has_zero_delays() {
        let o = outcome(vec![
            step(0, &[0], None, false, 1),
            step(0, &[0, 1], Some(0), true, 2),
            step(1, &[1], Some(0), false, 2),
            step(1, &[1], Some(1), true, 2),
        ]);
        assert_eq!(o.delay_count(), 0);
        assert_eq!(o.preemption_count(), 0);
    }

    #[test]
    fn buggy_classification_ignores_divergence() {
        let mut o = outcome(vec![]);
        assert!(!o.is_buggy());
        o.bug = Some(Bug::StepLimitExceeded { limit: 5 });
        assert!(!o.is_buggy());
        o.bug = Some(Bug::Deadlock { blocked: vec![] });
        assert!(o.is_buggy());
    }

    #[test]
    fn schedule_projects_thread_ids() {
        let o = outcome(vec![
            step(0, &[0], None, false, 1),
            step(1, &[0, 1], Some(0), true, 2),
        ]);
        assert_eq!(o.schedule(), vec![ThreadId(0), ThreadId(1)]);
    }
}

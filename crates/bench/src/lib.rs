//! # sct-bench
//!
//! Criterion benchmark harness: one benchmark target per table/figure of the
//! paper (see `benches/`). The targets measure the exploration throughput of
//! each technique and regenerate the corresponding table/figure shape at a
//! reduced schedule limit; the full-scale regeneration is done by the
//! `sct-experiments` binary in `sct-harness`.
//!
//! This library crate only hosts small shared helpers for the bench targets.

use sct_core::{ExploreLimits, Technique};
use sct_runtime::ExecConfig;
use sctbench::{benchmark_by_name, BenchmarkSpec};

/// Benchmarks that are cheap enough for Criterion iteration counts while
/// still exercising non-trivial schedule spaces.
pub const REPRESENTATIVE: &[&str] = &[
    "CS.account_bad",
    "CS.reorder_3_bad",
    "CS.stack_bad",
    "chess.WSQ",
    "splash2.lu",
];

/// Look up a representative benchmark (panics if the registry changed).
pub fn spec(name: &str) -> BenchmarkSpec {
    benchmark_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// The exploration configuration used by the bench targets.
pub fn bench_config() -> ExecConfig {
    ExecConfig::all_visible()
}

/// A small schedule limit so each Criterion sample stays in the millisecond
/// range.
pub fn bench_limits() -> ExploreLimits {
    ExploreLimits::with_schedule_limit(200)
}

/// The five study techniques with fixed seeds (deterministic benches).
pub fn study_techniques() -> Vec<(&'static str, Technique)> {
    vec![
        ("IPB", Technique::IterativePreemptionBounding),
        ("IDB", Technique::IterativeDelayBounding),
        ("DFS", Technique::Dfs),
        ("Rand", Technique::Random { seed: 1 }),
        (
            "MapleAlg",
            Technique::MapleLike {
                profiling_runs: 10,
                seed: 1,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_benchmarks_exist() {
        for name in REPRESENTATIVE {
            let s = spec(name);
            assert_eq!(s.name, *name);
        }
        assert_eq!(study_techniques().len(), 5);
        assert_eq!(bench_limits().schedule_limit, 200);
        let _ = bench_config();
    }
}

//! Figure 2 — bug-finding overlap of the techniques. Benchmarks the
//! mini-study that produces the Venn counts (2a: IPB/IDB/DFS, 2b:
//! IDB/Rand/MapleAlg) over a fixed subset of SCTBench.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_harness::{fig2a, fig2b, pipeline::HarnessConfig, run_study};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_venn");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let config = HarnessConfig {
        schedule_limit: 150,
        race_runs: 3,
        seed: 2,
        use_race_phase: true,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    group.bench_function("study_subset_splash2_plus_cs_sync", |b| {
        b.iter(|| {
            let mut results = run_study(&config, Some("splash2")).unwrap();
            results
                .benchmarks
                .extend(run_study(&config, Some("CS.sync")).unwrap().benchmarks);
            black_box(results.benchmarks.len())
        })
    });
    // Venn derivation itself, on precomputed results.
    let mut results = run_study(&config, Some("splash2")).unwrap();
    results
        .benchmarks
        .extend(run_study(&config, Some("CS.din_phil")).unwrap().benchmarks);
    group.bench_function("derive_venn_counts", |b| {
        b.iter(|| {
            let a = fig2a(&results);
            let bb = fig2b(&results);
            black_box((a.total_a(), a.total_b(), bb.total_c()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);

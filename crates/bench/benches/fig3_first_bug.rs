//! Figure 3 — number of schedules to the first bug, IPB vs IDB. Benchmarks
//! the bug-finding latency of the two bounding techniques on benchmarks where
//! the paper reports a clear IDB advantage, i.e. the cost of producing one
//! cross of the Figure 3 scatter plot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{iterative_bounding, BoundKind, ExploreLimits};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_first_bug");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let limits = ExploreLimits::with_schedule_limit(2_000);
    for name in ["CS.reorder_3_bad", "CS.wronglock_3_bad", "chess.WSQ"] {
        let program = spec(name).program();
        for (label, kind) in [("IPB", BoundKind::Preemption), ("IDB", BoundKind::Delay)] {
            group.bench_with_input(BenchmarkId::new(label, name), &kind, |b, kind| {
                b.iter(|| {
                    let stats = iterative_bounding(&program, &bench_config(), *kind, &limits);
                    black_box(stats.schedules_to_first_bug)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

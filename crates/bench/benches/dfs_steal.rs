//! Work-stealing frontier throughput: unbounded DFS over larger SCTBench
//! programs, serial vs the stolen frontier at 2/4/8 workers. The statistics
//! are bit-identical at every worker count (the differential suite proves
//! that), so the *only* thing this target measures is wall-clock — i.e.
//! schedules per second. Each measurement lands as a JSON point in
//! `target/criterion-shim/dfs_steal.jsonl`, giving the speedup trajectory a
//! machine-readable series across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{explore_bounded_stealing, BoundKind, ExploreLimits};
use std::hint::black_box;

/// Programs with enough frontier for stealing to pay: thousands of schedules
/// and non-trivial replay depth per schedule.
const BENCHMARKS: &[&str] = &["CS.din_phil4_sat", "CS.twostage_bad", "misc.ctrace-test"];
const SCHEDULES: u64 = 2_000;

fn explore(program: &sct_ir::Program, workers: usize) -> u64 {
    let limits = ExploreLimits::with_schedule_limit(SCHEDULES).with_steal_workers(workers);
    let stats =
        explore_bounded_stealing(program, &bench_config(), BoundKind::None, u32::MAX, &limits);
    stats.schedules
}

fn bench_dfs_steal(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_steal");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for name in BENCHMARKS {
        let program = spec(name).program();
        group.bench_with_input(BenchmarkId::new("serial", name), &program, |b, program| {
            b.iter(|| black_box(explore(program, 1)))
        });
        for workers in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("steal_x{workers}"), name),
                &program,
                |b, program| b.iter(|| black_box(explore(program, workers))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dfs_steal);
criterion_main!(benches);

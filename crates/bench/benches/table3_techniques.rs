//! Table 3 — per-benchmark, per-technique exploration. Benchmarks every
//! technique of the study (IPB, IDB, DFS, Rand, MapleAlg) on representative
//! SCTBench entries at a reduced schedule limit, which is exactly the work
//! that one cell block of Table 3 costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, bench_limits, spec, study_techniques, REPRESENTATIVE};
use sct_core::explore;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_techniques");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for name in REPRESENTATIVE {
        let program = spec(name).program();
        for (label, technique) in study_techniques() {
            group.bench_with_input(BenchmarkId::new(label, name), &technique, |b, technique| {
                b.iter(|| {
                    let stats = explore::run_technique(
                        &program,
                        &bench_config(),
                        *technique,
                        &bench_limits(),
                    );
                    black_box((stats.schedules, stats.found_bug()))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

//! Table 2 — "trivial benchmark" properties. Benchmarks the classification
//! pipeline: running random scheduling on trivially buggy versus
//! schedule-dependent benchmarks and deriving the Table 2 counters.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{explore, ExploreLimits, Technique};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_trivial");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    // A benchmark buggy on every schedule vs one needing a real interleaving:
    // the per-schedule cost of classifying them with 100 random runs.
    for name in ["CS.din_phil3_sat", "CS.stack_bad"] {
        let program = spec(name).program();
        group.bench_function(format!("random_100_runs/{name}"), |b| {
            b.iter(|| {
                let stats = explore::run_technique(
                    &program,
                    &bench_config(),
                    Technique::Random { seed: 3 },
                    &ExploreLimits::with_schedule_limit(100),
                );
                black_box(stats.buggy_fraction())
            })
        });
    }
    // Deriving the Table 2 counters from a pre-computed mini-study.
    let config = sct_harness::pipeline::HarnessConfig {
        schedule_limit: 100,
        race_runs: 3,
        seed: 1,
        use_race_phase: true,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    let results = sct_harness::run_study(&config, Some("splash2")).unwrap();
    group.bench_function("derive_table2_counters", |b| {
        b.iter(|| black_box(sct_harness::table2(&results).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * delay-bound versus preemption-bound schedule growth on the adversarial
//!   `reorder_N` family (Example 2 of the paper);
//! * the effect of the race-detection phase (racy-only visibility) versus
//!   treating every shared access as a visible operation;
//! * the interpreter's raw execution throughput (single round-robin run), the
//!   quantity that bounds how far any technique can get within a budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_core::{explore, iterative_bounding, BoundKind, ExploreLimits, Technique};
use sct_race::{race_detection_phase, RacePhaseConfig};
use sct_runtime::ExecConfig;
use sctbench::cs;
use std::hint::black_box;

fn bench_bound_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bound_growth");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let limits = ExploreLimits::with_schedule_limit(2_000);
    for (name, program) in [
        ("reorder_3", cs::reorder_3_bad()),
        ("reorder_4", cs::reorder_4_bad()),
        ("reorder_5", cs::reorder_5_bad()),
    ] {
        for (label, kind) in [("PB", BoundKind::Preemption), ("DB", BoundKind::Delay)] {
            group.bench_with_input(BenchmarkId::new(label, name), &kind, |b, kind| {
                b.iter(|| {
                    let stats =
                        iterative_bounding(&program, &ExecConfig::all_visible(), *kind, &limits);
                    black_box(stats.schedules)
                })
            });
        }
    }
    group.finish();
}

fn bench_race_phase_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_race_phase");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let program = cs::stack_bad();
    let report = race_detection_phase(
        &program,
        &RacePhaseConfig {
            runs: 10,
            seed: 4,
            ..Default::default()
        },
    );
    let racy_only = ExecConfig::with_racy_locations(report.racy_locations());
    let all_visible = ExecConfig::all_visible();
    let limits = ExploreLimits::with_schedule_limit(500);
    for (label, config) in [("racy_only", &racy_only), ("all_visible", &all_visible)] {
        group.bench_with_input(
            BenchmarkId::new("idb_stack_bad", label),
            config,
            |b, config| {
                b.iter(|| {
                    let stats = iterative_bounding(&program, config, BoundKind::Delay, &limits);
                    black_box((stats.schedules, stats.found_bug()))
                })
            },
        );
    }
    group.bench_function("race_detection_phase_10_runs", |b| {
        b.iter(|| {
            let report = race_detection_phase(
                &program,
                &RacePhaseConfig {
                    runs: 10,
                    seed: 4,
                    ..Default::default()
                },
            );
            black_box(report.races.len())
        })
    });
    group.finish();
}

fn bench_interpreter_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interpreter_throughput");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, program) in [
        ("din_phil5", cs::din_phil_sat_5()),
        ("twostage_100", cs::twostage_100_bad()),
    ] {
        group.bench_function(format!("single_round_robin_execution/{name}"), |b| {
            b.iter(|| {
                let outcome =
                    sct_runtime::run_once(&program, &ExecConfig::all_visible(), |point| {
                        point.round_robin_choice()
                    });
                black_box(outcome.steps.len())
            })
        });
    }
    // A randomised run of a moderate benchmark, the unit of work behind the
    // "10,000 schedules" budget.
    let program = cs::wronglock_bad();
    group.bench_function("random_100_schedules/wronglock", |b| {
        b.iter(|| {
            let stats = explore::run_technique(
                &program,
                &ExecConfig::all_visible(),
                Technique::Random { seed: 8 },
                &ExploreLimits::with_schedule_limit(100),
            );
            black_box(stats.buggy_schedules)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bound_growth,
    bench_race_phase_ablation,
    bench_interpreter_throughput
);
criterion_main!(benches);

//! Figure 4 — worst-case schedules to the bug (the number of non-buggy
//! schedules within the bound that found it). Benchmarks the full exploration
//! of the bound for IPB and IDB, which is exactly what the worst-case
//! analysis requires: the search continues after the first bug until every
//! schedule within the bound has been enumerated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{explore, BoundKind, ExploreLimits};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_worst_case");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let limits = ExploreLimits::with_schedule_limit(3_000);
    for name in ["CS.account_bad", "CS.twostage_bad", "splash2.fft"] {
        let program = spec(name).program();
        for (label, kind) in [("IPB", BoundKind::Preemption), ("IDB", BoundKind::Delay)] {
            group.bench_with_input(BenchmarkId::new(label, name), &kind, |b, kind| {
                b.iter(|| {
                    // Enumerate everything within bound 1 — the worst-case
                    // denominator of Figure 4 for benchmarks found at bound 1.
                    let stats = explore::bounded_dfs(&program, &bench_config(), *kind, 1, &limits);
                    black_box((stats.schedules, stats.buggy_schedules))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! Table 1 — benchmark-suite overview. Benchmarks the registry construction
//! (building all 52 IR programs) and the rendering of the overview table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_overview");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("build_all_52_benchmark_programs", |b| {
        b.iter(|| {
            let programs: Vec<_> = sctbench::all_benchmarks()
                .iter()
                .map(|spec| spec.program())
                .collect();
            black_box(programs.len())
        })
    });
    group.bench_function("render_table1", |b| {
        b.iter(|| black_box(sct_harness::table1().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Exploration-throughput ablation: serial vs work-sharded parallel
//! exploration, and allocation-reusing (`Execution::reset`) vs per-schedule
//! `Execution::new` hot loops, on a mid-size CS benchmark. Each measurement
//! lands as a JSON point in `target/criterion-shim/parallel_speedup.jsonl`,
//! giving the perf trajectory a machine-readable series across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{explore, explore_sharded, explore_sharded_serial, ExploreLimits, Technique};
use sct_core::{RandomScheduler, Scheduler};
use sct_runtime::{Execution, NoopObserver};
use std::hint::black_box;

const BENCHMARK: &str = "CS.reorder_3_bad";
const SCHEDULES: u64 = 400;

/// The pre-refactor hot loop: a fresh `Execution` (and config clone) per
/// schedule. Kept here as the baseline the reset-reuse loop is measured
/// against.
fn explore_fresh_alloc(program: &sct_ir::Program, runs: u64, seed: u64) -> u64 {
    let config = bench_config();
    let mut scheduler = RandomScheduler::new(runs, seed);
    let mut schedules = 0;
    while scheduler.begin_execution() {
        let mut exec = Execution::new(program, config.clone());
        let outcome = exec.run(&mut |p| scheduler.choose(p), &mut NoopObserver);
        scheduler.end_execution(&outcome);
        schedules += 1;
    }
    schedules
}

fn bench_reset_reuse(c: &mut Criterion) {
    let program = spec(BENCHMARK).program();
    let mut group = c.benchmark_group("parallel_speedup");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("alloc_per_schedule", BENCHMARK), |b| {
        b.iter(|| black_box(explore_fresh_alloc(&program, SCHEDULES, 1)))
    });
    group.bench_function(BenchmarkId::new("reset_reuse", BENCHMARK), |b| {
        b.iter(|| {
            let stats = explore::run_technique(
                &program,
                &bench_config(),
                Technique::Random { seed: 1 },
                &ExploreLimits::with_schedule_limit(SCHEDULES),
            );
            black_box(stats.schedules)
        })
    });
    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let program = spec(BENCHMARK).program();
    let limits = ExploreLimits::with_schedule_limit(SCHEDULES);
    let workers = sct_core::default_workers().max(2);
    let mut group = c.benchmark_group("parallel_speedup");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for technique in [
        Technique::Random { seed: 1 },
        Technique::Pct { depth: 3, seed: 1 },
    ] {
        let label = match technique {
            Technique::Random { .. } => "Rand",
            _ => "PCT",
        };
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_serial"), BENCHMARK),
            &technique,
            |b, technique| {
                b.iter(|| {
                    let stats = explore_sharded_serial(
                        &program,
                        &bench_config(),
                        *technique,
                        &limits,
                        workers,
                    );
                    black_box(stats.schedules)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_parallel_x{workers}"), BENCHMARK),
            &technique,
            |b, technique| {
                b.iter(|| {
                    let stats =
                        explore_sharded(&program, &bench_config(), *technique, &limits, workers);
                    black_box(stats.schedules)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reset_reuse, bench_serial_vs_parallel);
criterion_main!(benches);

//! Schedule-caching ablation: iterative bounding with and without the
//! decision-prefix schedule cache, serial and parallel, on benchmarks whose
//! searches climb several bound levels (where re-executing the covered
//! interior dominates the uncached cost). Each measurement lands as a JSON
//! point in `target/criterion-shim/schedule_cache.jsonl`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{bench_config, spec};
use sct_core::{explore, parallel_iterative_bounding, BoundKind, ExploreLimits};
use std::hint::black_box;

const BENCHMARKS: &[&str] = &["CS.reorder_3_bad", "CS.twostage_bad"];
const SCHEDULES: u64 = 1_000;

fn bench_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_cache");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for name in BENCHMARKS {
        let program = spec(name).program();
        let uncached = ExploreLimits::with_schedule_limit(SCHEDULES);
        let cached = uncached.clone().with_cache(true);
        for kind in [BoundKind::Preemption, BoundKind::Delay] {
            let label = kind.short_name();
            group.bench_with_input(
                BenchmarkId::new(format!("I{label}_uncached"), name),
                &kind,
                |b, kind| {
                    b.iter(|| {
                        let stats = explore::iterative_bounding(
                            &program,
                            &bench_config(),
                            *kind,
                            &uncached,
                        );
                        black_box(stats.executions)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("I{label}_cached"), name),
                &kind,
                |b, kind| {
                    b.iter(|| {
                        let stats =
                            explore::iterative_bounding(&program, &bench_config(), *kind, &cached);
                        black_box(stats.executions)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_cached_parallel(c: &mut Criterion) {
    let program = spec("CS.reorder_3_bad").program();
    let cached = ExploreLimits::with_schedule_limit(SCHEDULES).with_cache(true);
    let workers = sct_core::default_workers().max(2);
    let mut group = c.benchmark_group("schedule_cache");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new(
            format!("IDB_cached_parallel_x{workers}"),
            "CS.reorder_3_bad",
        ),
        |b| {
            b.iter(|| {
                let stats = parallel_iterative_bounding(
                    &program,
                    &bench_config(),
                    BoundKind::Delay,
                    &cached,
                    workers,
                );
                black_box(stats.cache_hits)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_cached_vs_uncached, bench_cached_parallel);
criterion_main!(benches);
